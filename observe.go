// Observation plumbing: how Options.Stats / Options.Observer reach the
// engines. A scope bundles the per-run state — the counter sink the
// engines write into, the shared trace/clock holder, and the observer —
// and a nil *scope is the fully-disabled fast path: every method below is
// nil-safe, so the engines receive nil sinks and nil hooks and pay one
// nil check per instrumentation point.
//
// In a portfolio run each worker gets a scope of its own (for per-worker
// counters and method attribution) that shares the parent's trace, clock
// and observer, so the anytime incumbent trace stays monotone across
// concurrently racing methods.
package htd

import (
	"fmt"
	"sync"

	"hypertree/internal/search"
	"hypertree/internal/telemetry"
)

// Telemetry types, re-exported from internal/telemetry.
type (
	// Stats accumulates live telemetry counters and the anytime incumbent
	// trace of a run; attach one via Options.Stats. The zero value is
	// ready to use and safe for concurrent portfolio workers.
	Stats = telemetry.Stats
	// StatsSnapshot is a plain-integer copy of the counters (JSON-ready).
	StatsSnapshot = telemetry.Snapshot
	// Incumbent is one point of the anytime trace: elapsed, width, method.
	Incumbent = telemetry.Incumbent
	// Phase marks a method starting or finishing.
	Phase = telemetry.Phase
	// PortfolioOutcome reports one finished portfolio worker.
	PortfolioOutcome = telemetry.Outcome
	// Observer bundles progress hooks; attach one via Options.Observer.
	// Hooks may fire concurrently from portfolio worker goroutines.
	Observer = telemetry.Observer
	// Trace is a bounded ring of structured timeline events (spans and
	// instants, one track per portfolio worker); attach one via
	// Options.Trace and export it with WriteChrome. Safe for concurrent
	// use; a nil *Trace discards everything at one nil check per point.
	Trace = telemetry.Trace
	// TraceArg is one key/value annotation of a trace event.
	TraceArg = telemetry.Arg
	// TraceEvent is one recorded trace event.
	TraceEvent = telemetry.Event
)

// NewTrace returns a trace whose event ring holds up to capacity events
// (a default of 65536 when capacity <= 0).
var NewTrace = telemetry.NewTrace

// scope is the observation state of one run or one portfolio worker.
type scope struct {
	stats  *telemetry.Stats // engine counter sink (per worker in a portfolio)
	root   *telemetry.Stats // incumbent trace + clock holder, shared across workers
	obs    *telemetry.Observer
	trace  *telemetry.Trace // structured event ring, shared across workers
	track  int              // this scope's trace timeline (0 = run, worker slot+1)
	method Method
	first  sync.Once // gates the scope's time-to-first-incumbent observation
}

// newScope derives the run's observation scope from the options, or nil
// when telemetry is fully disabled. Observer- or trace-only runs get a
// private Stats so incumbent events still share one clock and one
// monotone trace.
func newScope(opt Options) *scope {
	if opt.Stats == nil && opt.Observer == nil && opt.Trace == nil {
		return nil
	}
	st := opt.Stats
	if st == nil {
		st = new(telemetry.Stats)
	}
	st.Start()
	return &scope{stats: st, root: st, obs: opt.Observer, trace: opt.Trace, method: opt.Method}
}

// worker derives the scope of portfolio slot i running method m: fresh
// counters, shared trace/clock/observer; trace events land on timeline
// slot+1 (track 0 stays the run's own).
func (sc *scope) worker(i int, m Method) *scope {
	if sc == nil {
		return nil
	}
	w := &scope{stats: new(telemetry.Stats), root: sc.root, obs: sc.obs, trace: sc.trace, track: i + 1, method: m}
	w.trace.SetTrackName(w.track, fmt.Sprintf("worker %d: %s", i, m))
	return w
}

// traceRef returns the shared event ring (nil when disabled).
func (sc *scope) traceRef() *telemetry.Trace {
	if sc == nil {
		return nil
	}
	return sc.trace
}

// trackID returns this scope's trace timeline (0 when disabled).
func (sc *scope) trackID() int {
	if sc == nil {
		return 0
	}
	return sc.track
}

// engineStats returns the counter sink to hand to an engine (nil when
// disabled).
func (sc *scope) engineStats() *telemetry.Stats {
	if sc == nil {
		return nil
	}
	return sc.stats
}

// incumbentHook returns the engine-level incumbent callback: it records
// the improvement on the shared monotone trace and forwards the recorded
// point to the observer. Returns nil when disabled, so engines skip the
// call entirely.
func (sc *scope) incumbentHook() func(width int) {
	if sc == nil {
		return nil
	}
	method := sc.method.String()
	track := sc.track
	return func(w int) {
		// Time-to-first-incumbent, measured against the shared run clock and
		// recorded on the scope's own counters (per worker in a portfolio),
		// regardless of whether this width improves the global incumbent —
		// each worker's anytime behaviour is its own distribution point.
		sc.first.Do(func() {
			sc.stats.ObserveFirstIncumbent(sc.root.Elapsed())
		})
		if inc, ok := sc.root.RecordIncumbent(w, method); ok {
			sc.obs.Incumbent(inc)
			sc.trace.Instant(track, "incumbent",
				telemetry.Arg{Key: "width", Val: int64(w)})
		}
	}
}

// phase emits a phase event for this scope's method. The start/done pair
// every method emits doubles as a span on the scope's trace track, so the
// timeline shows one bar per method run without extra call sites.
func (sc *scope) phase(name string) {
	if sc == nil {
		return
	}
	switch name {
	case "start":
		sc.trace.Begin(sc.track, sc.method.String())
	case "done":
		sc.trace.End(sc.track, sc.method.String())
	}
	sc.obs.Phase(telemetry.Phase{Method: sc.method.String(), Name: name, Elapsed: sc.root.Elapsed()})
}

// outcome emits a portfolio worker outcome event.
func (sc *scope) outcome(out telemetry.Outcome) {
	if sc == nil {
		return
	}
	sc.obs.PortfolioOutcome(out)
}

// snapshot reads this scope's counters (zero when disabled).
func (sc *scope) snapshot() telemetry.Snapshot {
	if sc == nil {
		return telemetry.Snapshot{}
	}
	return sc.stats.Snapshot()
}

// absorb folds a finished worker's counters into this (parent) scope.
func (sc *scope) absorb(b telemetry.Snapshot) {
	if sc == nil {
		return
	}
	sc.stats.AddSnapshot(b)
}

// searchOptions builds the engine-level search options with this scope's
// telemetry attached.
func (sc *scope) searchOptions(opt Options) search.Options {
	return search.Options{
		MaxNodes:    opt.MaxNodes,
		Seed:        opt.Seed,
		FracBound:   opt.FracBound,
		Stats:       sc.engineStats(),
		OnIncumbent: sc.incumbentHook(),
		Trace:       sc.traceRef(),
		Track:       sc.trackID(),
	}
}
