// Observation plumbing: how Options.Stats / Options.Observer reach the
// engines. A scope bundles the per-run state — the counter sink the
// engines write into, the shared trace/clock holder, and the observer —
// and a nil *scope is the fully-disabled fast path: every method below is
// nil-safe, so the engines receive nil sinks and nil hooks and pay one
// nil check per instrumentation point.
//
// In a portfolio run each worker gets a scope of its own (for per-worker
// counters and method attribution) that shares the parent's trace, clock
// and observer, so the anytime incumbent trace stays monotone across
// concurrently racing methods.
package htd

import (
	"hypertree/internal/search"
	"hypertree/internal/telemetry"
)

// Telemetry types, re-exported from internal/telemetry.
type (
	// Stats accumulates live telemetry counters and the anytime incumbent
	// trace of a run; attach one via Options.Stats. The zero value is
	// ready to use and safe for concurrent portfolio workers.
	Stats = telemetry.Stats
	// StatsSnapshot is a plain-integer copy of the counters (JSON-ready).
	StatsSnapshot = telemetry.Snapshot
	// Incumbent is one point of the anytime trace: elapsed, width, method.
	Incumbent = telemetry.Incumbent
	// Phase marks a method starting or finishing.
	Phase = telemetry.Phase
	// PortfolioOutcome reports one finished portfolio worker.
	PortfolioOutcome = telemetry.Outcome
	// Observer bundles progress hooks; attach one via Options.Observer.
	// Hooks may fire concurrently from portfolio worker goroutines.
	Observer = telemetry.Observer
)

// scope is the observation state of one run or one portfolio worker.
type scope struct {
	stats  *telemetry.Stats // engine counter sink (per worker in a portfolio)
	root   *telemetry.Stats // trace + clock holder, shared across workers
	obs    *telemetry.Observer
	method Method
}

// newScope derives the run's observation scope from the options, or nil
// when telemetry is fully disabled. Observer-only runs get a private Stats
// so incumbent events still share one clock and one monotone trace.
func newScope(opt Options) *scope {
	if opt.Stats == nil && opt.Observer == nil {
		return nil
	}
	st := opt.Stats
	if st == nil {
		st = new(telemetry.Stats)
	}
	st.Start()
	return &scope{stats: st, root: st, obs: opt.Observer, method: opt.Method}
}

// worker derives the scope of portfolio slot i running method m: fresh
// counters, shared trace/clock/observer.
func (sc *scope) worker(i int, m Method) *scope {
	if sc == nil {
		return nil
	}
	return &scope{stats: new(telemetry.Stats), root: sc.root, obs: sc.obs, method: m}
}

// engineStats returns the counter sink to hand to an engine (nil when
// disabled).
func (sc *scope) engineStats() *telemetry.Stats {
	if sc == nil {
		return nil
	}
	return sc.stats
}

// incumbentHook returns the engine-level incumbent callback: it records
// the improvement on the shared monotone trace and forwards the recorded
// point to the observer. Returns nil when disabled, so engines skip the
// call entirely.
func (sc *scope) incumbentHook() func(width int) {
	if sc == nil {
		return nil
	}
	method := sc.method.String()
	return func(w int) {
		if inc, ok := sc.root.RecordIncumbent(w, method); ok {
			sc.obs.Incumbent(inc)
		}
	}
}

// phase emits a phase event for this scope's method.
func (sc *scope) phase(name string) {
	if sc == nil {
		return
	}
	sc.obs.Phase(telemetry.Phase{Method: sc.method.String(), Name: name, Elapsed: sc.root.Elapsed()})
}

// outcome emits a portfolio worker outcome event.
func (sc *scope) outcome(out telemetry.Outcome) {
	if sc == nil {
		return
	}
	sc.obs.PortfolioOutcome(out)
}

// snapshot reads this scope's counters (zero when disabled).
func (sc *scope) snapshot() telemetry.Snapshot {
	if sc == nil {
		return telemetry.Snapshot{}
	}
	return sc.stats.Snapshot()
}

// absorb folds a finished worker's counters into this (parent) scope.
func (sc *scope) absorb(b telemetry.Snapshot) {
	if sc == nil {
		return
	}
	sc.stats.AddSnapshot(b)
}

// searchOptions builds the engine-level search options with this scope's
// telemetry attached.
func (sc *scope) searchOptions(opt Options) search.Options {
	return search.Options{
		MaxNodes:    opt.MaxNodes,
		Seed:        opt.Seed,
		Stats:       sc.engineStats(),
		OnIncumbent: sc.incumbentHook(),
	}
}
