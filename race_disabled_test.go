//go:build !race

package htd

// raceEnabled reports whether the race detector instruments this build.
const raceEnabled = false
