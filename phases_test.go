// Facade-level properties of the cost-attribution layer: for a
// single-threaded run the exclusive phase clocks must sum to no more than
// the wall clock around the call, and attaching the clocks must leave the
// computed result bit-identical for a fixed seed (telemetry never feeds
// back into search).
package htd

import (
	"reflect"
	"testing"
	"time"

	"hypertree/internal/gen"
)

// TestPhasesSumWithinWall runs a single-method (hence single-worker)
// exact GHW search plus λ-materialization with the clocks attached and
// asserts the exclusive-attribution invariant: Σ phases ≤ wall. A
// portfolio run folds per-worker clocks and so reports CPU time, which
// is why this property is stated — and tested — at Jobs=1 equivalence
// only.
func TestPhasesSumWithinWall(t *testing.T) {
	h := gen.Grid2DHypergraph(5, 5)
	st := new(Stats)
	start := time.Now()
	if _, err := Decompose(h, Options{Method: MethodBB, Seed: 1, MaxNodes: 3000, Stats: st}); err != nil {
		t.Fatal(err)
	}
	wall := time.Since(start)
	snap := st.Snapshot()
	total := snap.Phases.Total()
	if total <= 0 {
		t.Fatal("phase clocks attributed nothing")
	}
	if total > int64(wall) {
		t.Fatalf("phases sum %v exceeds wall %v: %+v",
			time.Duration(total), wall, snap.Phases)
	}
	// The run must have touched the phases this pipeline is built from.
	if snap.Phases.BranchNs == 0 {
		t.Errorf("no branch-phase time recorded: %+v", snap.Phases)
	}
	if snap.Phases.CoverProbeNs == 0 && snap.Phases.CoverSolveNs == 0 {
		t.Errorf("no cover-oracle time recorded: %+v", snap.Phases)
	}
	if snap.Phases.LambdaNs == 0 {
		t.Errorf("no λ-materialization time recorded: %+v", snap.Phases)
	}
}

// TestPhaseClocksResultInvariant pins the no-feedback contract: the same
// fixed-seed search with and without the attribution layer attached must
// return identical widths, bounds, exactness, node counts and witness
// orderings — including under -fracbound, where the cascade both records
// telemetry and prunes.
func TestPhaseClocksResultInvariant(t *testing.T) {
	h := gen.Grid2DHypergraph(5, 5)
	for _, fracBound := range []bool{false, true} {
		base := Options{Method: MethodBB, Seed: 1, MaxNodes: 3000, FracBound: fracBound}
		bare, err := GHW(h, base)
		if err != nil {
			t.Fatal(err)
		}
		attached := base
		attached.Stats = new(Stats)
		attached.Trace = NewTrace(0)
		obs, err := GHW(h, attached)
		if err != nil {
			t.Fatal(err)
		}
		if bare.Width != obs.Width || bare.LowerBound != obs.LowerBound || bare.Exact != obs.Exact {
			t.Fatalf("fracbound=%v: result drifted with telemetry attached: %d/%d/%v vs %d/%d/%v",
				fracBound, bare.Width, bare.LowerBound, bare.Exact,
				obs.Width, obs.LowerBound, obs.Exact)
		}
		if bare.Nodes != obs.Nodes {
			t.Fatalf("fracbound=%v: node count drifted %d -> %d with telemetry attached",
				fracBound, bare.Nodes, obs.Nodes)
		}
		if !reflect.DeepEqual(bare.Ordering, obs.Ordering) {
			t.Fatalf("fracbound=%v: witness ordering drifted with telemetry attached", fracBound)
		}
	}
}
