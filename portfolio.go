package htd

import (
	"context"
	"fmt"
	"sync"
	"time"

	"hypertree/internal/cover"
	"hypertree/internal/interrupt"
	"hypertree/internal/telemetry"
)

// DefaultPortfolio returns the method set MethodPortfolio races when
// Options.Portfolio is empty. Slice position is the priority used to break
// width ties (lower index wins), so the cheap always-finishing heuristic
// comes first and the exact searches follow.
func DefaultPortfolio() []Method {
	return []Method{MethodMinFill, MethodBB, MethodAStar, MethodGA}
}

// DefaultGHWPortfolio is the default method set for GHW (and Decompose)
// portfolio runs: DefaultPortfolio plus the fractional-width local search
// (which scores its ordering with exact integral covers so it competes on
// equal terms while populating the shared frac memo) and the
// balanced-separator search, whose iterative deepening from the tw-ksc
// bound proves exactness on instances the ordering searches only bound.
func DefaultGHWPortfolio() []Method {
	return append(DefaultPortfolio(), MethodFHW, MethodBalSep)
}

// portfolioSeedStride separates the derived seeds of portfolio workers.
// Worker 0 keeps Options.Seed unchanged, so a single-method portfolio
// reproduces the plain run of that method bit for bit.
const portfolioSeedStride = 7919

// portfolioMethods resolves and validates the raced method set against the
// problem's default set; fhwOK rejects the GHW-only methods (MethodFHW,
// MethodBalSep) where they have no meaning (treewidth).
func (o Options) portfolioMethods(def []Method, fhwOK bool) ([]Method, error) {
	ms := o.Portfolio
	if len(ms) == 0 {
		ms = def
	}
	for _, m := range ms {
		if m == MethodPortfolio {
			return nil, fmt.Errorf("htd: portfolio cannot contain itself")
		}
		if m == MethodFHW && !fhwOK {
			return nil, fmt.Errorf("htd: fhw is not a treewidth method")
		}
		if m == MethodBalSep && !fhwOK {
			return nil, fmt.Errorf("htd: balsep is not a treewidth method")
		}
		if _, err := ParseMethod(m.String()); err != nil {
			return nil, fmt.Errorf("htd: invalid portfolio entry %v", m)
		}
	}
	return ms, nil
}

// workerOptions derives the per-worker options: same configuration, but a
// seed offset per slot so concurrent randomised methods never share a
// stream (worker 0 keeps the caller's seed).
func (o Options) workerOptions(i int, m Method) Options {
	w := o
	w.Method = m
	w.Seed = o.Seed + int64(i)*portfolioSeedStride
	// Jobs caps the portfolio pool, not a worker's internal parallelism: an
	// fhw worker runs a single local-search stream inside its slot.
	w.Jobs = 1
	return w
}

type portfolioOutcome struct {
	ord     Ordering
	res     Result
	err     error
	elapsed time.Duration
	attr    telemetry.Outcome
}

// runPortfolio races run(ctx, i, scope_i) for every method slot on its own
// goroutine, with at most jobs running concurrently (jobs ≤ 0 means all at
// once). The first exact answer cancels the remaining workers; everyone
// else degrades to its best-so-far incumbent per the Ctx contracts.
//
// Winner selection is deterministic: smallest width, ties preferring an
// Exact result, then the lower slot index. When any exact result lands its
// width is the true optimum, so no straggler can beat it and the reported
// width does not depend on scheduling; without exact finishers nothing is
// cancelled and every worker result is itself deterministic in the seed.
// The returned LowerBound is the max over workers and Nodes the sum.
//
// Each worker gets a scope of its own so the result can attribute nodes,
// prunes and wall time per method (Result.Workers); sc receives one
// OnPortfolioOutcome event per slot in completion order, and every
// worker's counters are folded into the parent Stats.
func runPortfolio(ctx context.Context, methods []Method, jobs int, sc *scope, run func(ctx context.Context, i int, ws *scope) (Ordering, Result, error)) (Ordering, Result, error) {
	nslots := len(methods)
	raceCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	if jobs <= 0 || jobs > nslots {
		jobs = nslots
	}
	outcomes := make([]portfolioOutcome, nslots)
	scopes := make([]*scope, nslots)
	for i, m := range methods {
		scopes[i] = sc.worker(i, m)
	}
	// A jobs-sized pool drains the slots in index order, so Jobs=1 runs the
	// methods strictly sequentially — which makes the entire result,
	// ordering included, reproducible for a fixed Seed (racing workers are
	// only width-deterministic; see below).
	slots := make(chan int, nslots)
	for i := 0; i < nslots; i++ {
		slots <- i
	}
	close(slots)
	done := make(chan int, nslots)
	var wg sync.WaitGroup
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range slots {
				if err := raceCtx.Err(); err != nil {
					// Cancelled while queued behind the jobs cap: report the
					// context error instead of starting doomed work.
					outcomes[i] = portfolioOutcome{err: err}
					done <- i
					continue
				}
				start := time.Now()
				ord, res, err := run(raceCtx, i, scopes[i])
				outcomes[i] = portfolioOutcome{ord: ord, res: res, err: err, elapsed: time.Since(start)}
				done <- i
			}
		}()
	}
	go func() { wg.Wait(); close(done) }()

	for i := range done {
		out := &outcomes[i]
		if out.err == nil && out.res.Exact {
			cancel() // optimum proven — stop the stragglers
			sc.traceRef().Instant(0, "portfolio.exact",
				telemetry.Arg{Key: "slot", Val: int64(i)},
				telemetry.Arg{Key: "width", Val: int64(out.res.Width)})
		}
		// Attribution, built in completion order: the observer sees each
		// worker as it finishes, the result keeps all of them per slot.
		attr := telemetry.Outcome{
			Slot:    i,
			Method:  methods[i].String(),
			Elapsed: out.elapsed,
			Stats:   scopes[i].snapshot(),
		}
		if out.err != nil {
			attr.Err = out.err.Error()
		} else {
			attr.Width = out.res.Width
			attr.LowerBound = out.res.LowerBound
			attr.Exact = out.res.Exact
			attr.FracWidth = out.res.FracWidth
		}
		out.attr = attr
		sc.outcome(attr)
		sc.absorb(attr.Stats)
	}

	// Deterministic selection over the completed slots.
	best := -1
	var (
		nodes    int64
		firstErr error
	)
	for i := range outcomes {
		out := &outcomes[i]
		if out.err != nil || out.ord == nil {
			if firstErr == nil && out.err != nil {
				firstErr = out.err
			}
			continue
		}
		nodes += out.res.Nodes
		if best < 0 || betterOutcome(out, &outcomes[best]) {
			best = i
		}
	}
	if best < 0 {
		if err := interrupt.Cause(ctx); err != nil {
			return nil, Result{}, err
		}
		if firstErr != nil {
			return nil, Result{}, firstErr
		}
		return nil, Result{}, fmt.Errorf("htd: portfolio produced no result")
	}

	res := outcomes[best].res
	res.Ordering = outcomes[best].ord
	res.Nodes = nodes
	res.Winner = methods[best].String()

	// Every worker bound is a valid lower bound on the true width, and the
	// winning width is a valid upper bound, so the max worker bound never
	// exceeds res.Width; when they meet, optimality is proven even if the
	// winner itself was a heuristic. LowerBoundBy names the method whose
	// bound survived — a losing worker's proof is still a proof (ties keep
	// the winner, then the earlier slot).
	lbBy := best
	for i := range outcomes {
		out := &outcomes[i]
		if out.err != nil || out.ord == nil {
			continue
		}
		if out.res.LowerBound > outcomes[lbBy].res.LowerBound {
			lbBy = i
		}
	}
	if lb := outcomes[lbBy].res.LowerBound; lb > res.LowerBound {
		res.LowerBound = lb
	}
	if res.LowerBound > 0 {
		res.LowerBoundBy = methods[lbBy].String()
	} else {
		res.LowerBoundBy = ""
	}
	if res.LowerBound == res.Width {
		res.Exact = true
	}

	workers := make([]telemetry.Outcome, nslots)
	for i := range outcomes {
		workers[i] = outcomes[i].attr
	}
	res.Workers = workers
	return res.Ordering, res, nil
}

// betterOutcome reports whether a strictly beats b: smaller width first,
// then Exact over heuristic. Equal candidates keep the earlier slot.
func betterOutcome(a, b *portfolioOutcome) bool {
	if a.res.Width != b.res.Width {
		return a.res.Width < b.res.Width
	}
	return a.res.Exact && !b.res.Exact
}

// portfolioGHW races the configured methods for a GHW ordering of h. All
// workers share the caller's cover oracle: a set-cover subproblem solved
// by any worker is a cache hit for every other, and because the oracle
// only memoizes deterministically computed covers, sharing it never makes
// any worker's result depend on scheduling.
func portfolioGHW(ctx context.Context, h *Hypergraph, opt Options, orc *cover.Oracle) (Ordering, Result, error) {
	methods, err := opt.portfolioMethods(DefaultGHWPortfolio(), true)
	if err != nil {
		return nil, Result{}, err
	}
	sc := newScope(opt)
	sc.phase("start")
	defer sc.phase("done")
	return runPortfolio(ctx, methods, opt.Jobs, sc, func(ctx context.Context, i int, ws *scope) (Ordering, Result, error) {
		return ghwOne(ctx, h, opt.workerOptions(i, methods[i]), ws, orc)
	})
}

// portfolioTreewidth races the configured methods for the treewidth of g.
func portfolioTreewidth(ctx context.Context, g *Graph, opt Options) (Result, error) {
	methods, err := opt.portfolioMethods(DefaultPortfolio(), false)
	if err != nil {
		return Result{}, err
	}
	sc := newScope(opt)
	sc.phase("start")
	defer sc.phase("done")
	_, res, err := runPortfolio(ctx, methods, opt.Jobs, sc, func(ctx context.Context, i int, ws *scope) (Ordering, Result, error) {
		res, err := twOne(ctx, g, opt.workerOptions(i, methods[i]), ws)
		return res.Ordering, res, err
	})
	return res, err
}
