package htd

import (
	"context"
	"fmt"
	"sync"

	"hypertree/internal/interrupt"
)

// DefaultPortfolio returns the method set MethodPortfolio races when
// Options.Portfolio is empty. Slice position is the priority used to break
// width ties (lower index wins), so the cheap always-finishing heuristic
// comes first and the exact searches follow.
func DefaultPortfolio() []Method {
	return []Method{MethodMinFill, MethodBB, MethodAStar, MethodGA}
}

// portfolioSeedStride separates the derived seeds of portfolio workers.
// Worker 0 keeps Options.Seed unchanged, so a single-method portfolio
// reproduces the plain run of that method bit for bit.
const portfolioSeedStride = 7919

// portfolioMethods resolves and validates the raced method set.
func (o Options) portfolioMethods() ([]Method, error) {
	ms := o.Portfolio
	if len(ms) == 0 {
		ms = DefaultPortfolio()
	}
	for _, m := range ms {
		if m == MethodPortfolio {
			return nil, fmt.Errorf("htd: portfolio cannot contain itself")
		}
		if _, err := ParseMethod(m.String()); err != nil {
			return nil, fmt.Errorf("htd: invalid portfolio entry %v", m)
		}
	}
	return ms, nil
}

// workerOptions derives the per-worker options: same configuration, but a
// seed offset per slot so concurrent randomised methods never share a
// stream (worker 0 keeps the caller's seed).
func (o Options) workerOptions(i int, m Method) Options {
	w := o
	w.Method = m
	w.Seed = o.Seed + int64(i)*portfolioSeedStride
	return w
}

type portfolioOutcome struct {
	ord Ordering
	res Result
	err error
}

// runPortfolio races run(ctx, i) for every method slot on its own
// goroutine, with at most jobs running concurrently (jobs ≤ 0 means all at
// once). The first exact answer cancels the remaining workers; everyone
// else degrades to its best-so-far incumbent per the Ctx contracts.
//
// Winner selection is deterministic: smallest width, ties preferring an
// Exact result, then the lower slot index. When any exact result lands its
// width is the true optimum, so no straggler can beat it and the reported
// width does not depend on scheduling; without exact finishers nothing is
// cancelled and every worker result is itself deterministic in the seed.
// The returned LowerBound is the max over workers and Nodes the sum.
func runPortfolio(ctx context.Context, nslots, jobs int, run func(ctx context.Context, i int) (Ordering, Result, error)) (Ordering, Result, error) {
	raceCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	if jobs <= 0 || jobs > nslots {
		jobs = nslots
	}
	sem := make(chan struct{}, jobs)
	outcomes := make([]portfolioOutcome, nslots)
	done := make(chan int, nslots)
	var wg sync.WaitGroup
	for i := 0; i < nslots; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			select {
			case sem <- struct{}{}:
			case <-raceCtx.Done():
				// Cancelled while queued behind the jobs cap: report the
				// context error instead of starting doomed work.
				outcomes[i] = portfolioOutcome{err: raceCtx.Err()}
				done <- i
				return
			}
			defer func() { <-sem }()
			ord, res, err := run(raceCtx, i)
			outcomes[i] = portfolioOutcome{ord: ord, res: res, err: err}
			done <- i
		}(i)
	}
	go func() { wg.Wait(); close(done) }()

	for i := range done {
		if out := &outcomes[i]; out.err == nil && out.res.Exact {
			cancel() // optimum proven — stop the stragglers
		}
	}

	// Deterministic selection over the completed slots.
	best := -1
	var (
		lbMax    int
		nodes    int64
		firstErr error
	)
	for i := range outcomes {
		out := &outcomes[i]
		if out.err != nil || out.ord == nil {
			if firstErr == nil && out.err != nil {
				firstErr = out.err
			}
			continue
		}
		if out.res.LowerBound > lbMax {
			lbMax = out.res.LowerBound
		}
		nodes += out.res.Nodes
		if best < 0 || betterOutcome(out, &outcomes[best]) {
			best = i
		}
	}
	if best < 0 {
		if err := interrupt.Cause(ctx); err != nil {
			return nil, Result{}, err
		}
		if firstErr != nil {
			return nil, Result{}, firstErr
		}
		return nil, Result{}, fmt.Errorf("htd: portfolio produced no result")
	}

	res := outcomes[best].res
	res.Ordering = outcomes[best].ord
	res.Nodes = nodes
	// Every worker bound is a valid lower bound on the true width, and the
	// winning width is a valid upper bound, so lbMax ≤ res.Width always;
	// when they meet, optimality is proven even if the winner itself was a
	// heuristic.
	if lbMax > res.LowerBound {
		res.LowerBound = lbMax
	}
	if res.LowerBound == res.Width {
		res.Exact = true
	}
	return res.Ordering, res, nil
}

// betterOutcome reports whether a strictly beats b: smaller width first,
// then Exact over heuristic. Equal candidates keep the earlier slot.
func betterOutcome(a, b *portfolioOutcome) bool {
	if a.res.Width != b.res.Width {
		return a.res.Width < b.res.Width
	}
	return a.res.Exact && !b.res.Exact
}

// portfolioGHW races the configured methods for a GHW ordering of h.
func portfolioGHW(ctx context.Context, h *Hypergraph, opt Options) (Ordering, Result, error) {
	methods, err := opt.portfolioMethods()
	if err != nil {
		return nil, Result{}, err
	}
	return runPortfolio(ctx, len(methods), opt.Jobs, func(ctx context.Context, i int) (Ordering, Result, error) {
		return ghwOrderingCtx(ctx, h, opt.workerOptions(i, methods[i]))
	})
}

// portfolioTreewidth races the configured methods for the treewidth of g.
func portfolioTreewidth(ctx context.Context, g *Graph, opt Options) (Result, error) {
	methods, err := opt.portfolioMethods()
	if err != nil {
		return Result{}, err
	}
	_, res, err := runPortfolio(ctx, len(methods), opt.Jobs, func(ctx context.Context, i int) (Ordering, Result, error) {
		res, err := treewidthOne(ctx, g, opt.workerOptions(i, methods[i]))
		return res.Ordering, res, err
	})
	return res, err
}
