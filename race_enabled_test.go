//go:build race

package htd

// raceEnabled reports whether the race detector instruments this build.
// Instrumentation slows the search loops roughly an order of magnitude, so
// wall-clock assertions scale their bounds by it.
const raceEnabled = true
