// Benchmarks pinning the cost of the telemetry layer: BB-tw over a
// DIMACS instance with telemetry disabled (the nil fast path — one nil
// check per instrumentation point) versus fully attached. The acceptance
// bar is ≤2% overhead for the disabled case relative to the pre-telemetry
// engine; compare the two benchmarks to see the attached cost too.
//
//	go test -bench BenchmarkBBTreewidth -benchtime 5x .
package htd

import (
	"bytes"
	"testing"

	"hypertree/internal/gen"
)

// benchDIMACSGraph round-trips queen6_6 through WriteDIMACS/ParseDIMACS
// so the benchmark input is literally a DIMACS instance.
func benchDIMACSGraph(b *testing.B) *Graph {
	b.Helper()
	var buf bytes.Buffer
	if err := WriteDIMACS(&buf, gen.Queen(6)); err != nil {
		b.Fatal(err)
	}
	g, err := ParseDIMACS(&buf)
	if err != nil {
		b.Fatal(err)
	}
	return g
}

// benchBBOpts is a fixed BB-tw workload: the node budget makes every
// iteration expand the same search tree prefix regardless of wall clock.
func benchBBOpts() Options {
	return Options{Method: MethodBB, Seed: 1, MaxNodes: 10000}
}

func BenchmarkBBTreewidthTelemetryOff(b *testing.B) {
	g := benchDIMACSGraph(b)
	opt := benchBBOpts()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Treewidth(g, opt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBBTreewidthTelemetryOn(b *testing.B) {
	g := benchDIMACSGraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opt := benchBBOpts()
		opt.Stats = new(Stats)
		opt.Observer = &Observer{OnIncumbent: func(Incumbent) {}}
		if _, err := Treewidth(g, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBBTreewidthTraceOn measures the attached-trace cost on top of
// the other telemetry sinks: the engines sample their hot paths (one
// instant per 1024 nodes), so this should sit within noise of TelemetryOn.
func BenchmarkBBTreewidthTraceOn(b *testing.B) {
	g := benchDIMACSGraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opt := benchBBOpts()
		opt.Stats = new(Stats)
		opt.Observer = &Observer{OnIncumbent: func(Incumbent) {}}
		opt.Trace = NewTrace(0)
		if _, err := Treewidth(g, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGHWHistogramsOff / On pin the cost of the latency histograms on
// a workload that actually exercises them: GHW over a hypergraph drives
// the cover oracle, so every probe and exact solve passes an
// ObserveSince/ExactLatency point (reusing the fixed-budget workload from
// cover_bench_test.go). Off is the nil fast path — no Stats, one nil check
// per observation; On attaches a Stats so each point is a time.Now pair
// plus one atomic bucket increment. The ≤2% acceptance bar for the
// disabled path extends to these points.
func BenchmarkGHWHistogramsOff(b *testing.B) {
	h := benchGHWInstance()
	opt := benchGHWOpts(false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := GHW(h, opt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGHWHistogramsOn(b *testing.B) {
	h := benchGHWInstance()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opt := benchGHWOpts(false)
		opt.Stats = new(Stats)
		if _, err := GHW(h, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDecomposePhaseClocksOff / On pin the cost of the cost-
// attribution phase clocks on the full decomposition pipeline (heuristic
// seed, branch windows, per-call oracle attribution, λ-materialization).
// Off is the nil fast path — MarkPhase returns the zero mark and every
// AddPhase/AttributeSince point is one nil check — and inherits the ≤2%
// overhead bar; On adds two clock reads plus NumPhases atomic loads per
// coarse window and one atomic add per fine-phase call.
func BenchmarkDecomposePhaseClocksOff(b *testing.B) {
	h := benchGHWInstance()
	opt := benchGHWOpts(false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decompose(h, opt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecomposePhaseClocksOn(b *testing.B) {
	h := benchGHWInstance()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opt := benchGHWOpts(false)
		opt.Stats = new(Stats)
		if _, err := Decompose(h, opt); err != nil {
			b.Fatal(err)
		}
	}
}
