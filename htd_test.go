package htd

import (
	"strings"
	"testing"

	"hypertree/internal/gen"
)

func parseExample(t *testing.T) *Hypergraph {
	t.Helper()
	h, err := ParseHypergraph(strings.NewReader("C1(x1,x2,x3), C2(x1,x5,x6), C3(x3,x4,x5)."))
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestDecomposeAllMethods(t *testing.T) {
	h := parseExample(t)
	for _, m := range []Method{MethodMinFill, MethodGA, MethodSAIGA, MethodBB, MethodAStar} {
		opt := Options{Method: m, Seed: 3}
		if m == MethodGA {
			opt.GA = &GAConfig{PopulationSize: 20, CrossoverRate: 1, MutationRate: 0.3,
				TournamentSize: 2, Generations: 20, Elitism: true}
		}
		if m == MethodSAIGA {
			opt.SAIGA = &SAIGAConfig{Islands: 2, IslandPop: 10, Epochs: 3, EpochLength: 3,
				TournamentSize: 2, MigrationSize: 1}
		}
		d, err := Decompose(h, opt)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if err := d.ValidateGHD(); err != nil {
			t.Fatalf("%v: invalid GHD: %v", m, err)
		}
		if w := d.GHWidth(); w < 2 || w > 3 {
			t.Fatalf("%v: ghw bound %d outside [2,3]", m, w)
		}
	}
}

func TestGHWExactMethodsAgree(t *testing.T) {
	h := parseExample(t)
	bbRes, err := GHW(h, Options{Method: MethodBB})
	if err != nil {
		t.Fatal(err)
	}
	asRes, err := GHW(h, Options{Method: MethodAStar})
	if err != nil {
		t.Fatal(err)
	}
	if !bbRes.Exact || !asRes.Exact || bbRes.Width != asRes.Width {
		t.Fatalf("BB %+v vs A* %+v", bbRes, asRes)
	}
}

func TestTreewidthFacade(t *testing.T) {
	g := gen.Grid2D(4, 4)
	res, err := Treewidth(g, Options{Method: MethodBB})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exact || res.Width != 4 {
		t.Fatalf("tw(grid4) = %+v", res)
	}
	lb, ub := TreewidthBounds(g, 1)
	if lb > 4 || ub < 4 {
		t.Fatalf("bounds %d..%d exclude 4", lb, ub)
	}
}

func TestGHWLowerBoundFacade(t *testing.T) {
	h := gen.CliqueHypergraph(8)
	if lb := GHWLowerBound(h, 1); lb < 2 || lb > 4 {
		t.Fatalf("ghw lb of K8 = %d, want in [2,4]", lb)
	}
}

func TestDecomposeOrderingFacade(t *testing.T) {
	h := parseExample(t)
	o := Ordering{0, 1, 2, 3, 4, 5}
	d, err := DecomposeOrdering(h, o)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.ValidateGHD(); err != nil {
		t.Fatal(err)
	}
	if _, err := DecomposeOrdering(h, Ordering{0, 0, 1, 2, 3, 4}); err == nil {
		t.Fatal("invalid ordering accepted")
	}
}

func TestParseMethodRoundTrip(t *testing.T) {
	for _, m := range []Method{MethodMinFill, MethodGA, MethodSAIGA, MethodBB, MethodAStar} {
		got, err := ParseMethod(m.String())
		if err != nil || got != m {
			t.Fatalf("round trip %v: %v %v", m, got, err)
		}
	}
	if _, err := ParseMethod("bogus"); err == nil {
		t.Fatal("bogus method accepted")
	}
}

func TestSolveCSPFacade(t *testing.T) {
	// Small colouring CSP: triangle with 3 colours.
	c := &CSP{
		VarNames: []string{"a", "b", "c"},
		Domains:  [][]int{{0, 1, 2}, {0, 1, 2}, {0, 1, 2}},
	}
	var neq [][]int
	for x := 0; x < 3; x++ {
		for y := 0; y < 3; y++ {
			if x != y {
				neq = append(neq, []int{x, y})
			}
		}
	}
	for _, p := range [][2]int{{0, 1}, {1, 2}, {0, 2}} {
		tuples := make([][]int, len(neq))
		for i, t := range neq {
			tuples[i] = append([]int(nil), t...)
		}
		c.Constraints = append(c.Constraints, &Constraint{
			Name: "neq",
			Rel:  NewRelation([]int{p[0], p[1]}, tuples),
		})
	}
	sol, ok, err := SolveCSP(c, Options{Method: MethodBB})
	if err != nil || !ok {
		t.Fatalf("triangle colouring failed: %v %v", ok, err)
	}
	if !c.Check(sol) {
		t.Fatalf("solution %v invalid", sol)
	}
}

func TestHypertreeWidthFacade(t *testing.T) {
	h := gen.CliqueHypergraph(6)
	w, d := HypertreeWidth(h, 0)
	if w != 3 {
		t.Fatalf("hw(K6) = %d, want 3", w)
	}
	if err := d.ValidateGHD(); err != nil {
		t.Fatal(err)
	}
	if d2, ok := HypertreeDecompose(h, 2); ok || d2 != nil {
		t.Fatal("hw ≤ 2 claimed for K6")
	}
}

func TestFractionalFacade(t *testing.T) {
	h := gen.CliqueHypergraph(5)
	w, weights, err := FractionalCover(h, []int{0, 1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if w < 2.49 || w > 2.51 {
		t.Fatalf("ρ*(K5) = %v, want 2.5", w)
	}
	if len(weights) == 0 {
		t.Fatal("no cover weights returned")
	}
	ub, o := FHWUpperBound(h, 1)
	if ub < 2.49 || ub > 3.01 {
		t.Fatalf("fhw ub = %v", ub)
	}
	if got := FractionalWidth(h, o); got > ub+1e-9 {
		t.Fatalf("ordering width %v > reported %v", got, ub)
	}
}

func TestAcyclicityFacade(t *testing.T) {
	if !IsAcyclicHypergraph(gen.Chain(4, 3, 1)) {
		t.Fatal("chain must be acyclic")
	}
	if IsAcyclicHypergraph(parseExample(t)) {
		t.Fatal("example 5 must be cyclic")
	}
}

func TestWeightedFacade(t *testing.T) {
	h := FromEdges(3, [][]int{{0, 1}, {1, 2}})
	w := WeightedWidth(h, []int{2, 2, 2}, Ordering{0, 1, 2})
	if w < 3.3 || w > 3.4 { // log2(10) ≈ 3.3219
		t.Fatalf("weighted width = %v, want ≈3.32", w)
	}
	res := WeightedTriangulation(h, []int{2, 2, 2}, GAConfig{
		PopulationSize: 10, CrossoverRate: 1, MutationRate: 0.3,
		TournamentSize: 2, Generations: 10, Elitism: true,
	})
	if res.Weight > w+1e-9 {
		t.Fatalf("GA weight %v worse than a fixed ordering %v", res.Weight, w)
	}
}

func TestBalancedFacade(t *testing.T) {
	h := gen.Adder(10)
	d, ok, complete := HypertreeDecomposeBalanced(h, 2)
	if !ok {
		t.Fatal("balanced decomposer failed on adder_10 at k=2")
	}
	if !complete {
		t.Fatal("uncapped balanced run reported incomplete")
	}
	if err := d.ValidateGHD(); err != nil {
		t.Fatal(err)
	}
	if d.GHWidth() > 2 {
		t.Fatalf("width %d > 2", d.GHWidth())
	}
}

func TestQueryFacade(t *testing.T) {
	db := NewDatabase()
	db.Add("r", "1", "2")
	db.Add("r", "2", "3")
	q, err := ParseQuery("ans(X, Z) :- r(X, Y), r(Y, Z).")
	if err != nil {
		t.Fatal(err)
	}
	rows, err := AnswerQuery(q, db)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0][0] != "1" || rows[0][1] != "3" {
		t.Fatalf("answers = %v", rows)
	}
	ok, err := BooleanQuery(q, db)
	if err != nil || !ok {
		t.Fatalf("boolean: %v %v", ok, err)
	}
}

func TestCountCSPFacade(t *testing.T) {
	// Path x≠y≠z over 2 values: 2 solutions for the path.
	neq := [][]int{{0, 1}, {1, 0}}
	cl := func() [][]int {
		out := make([][]int, len(neq))
		for i, t := range neq {
			out[i] = append([]int(nil), t...)
		}
		return out
	}
	c := &CSP{
		VarNames: []string{"x", "y", "z"},
		Domains:  [][]int{{0, 1}, {0, 1}, {0, 1}},
		Constraints: []*Constraint{
			{Name: "xy", Rel: NewRelation([]int{0, 1}, cl())},
			{Name: "yz", Rel: NewRelation([]int{1, 2}, cl())},
		},
	}
	got, err := CountCSP(c, Options{Method: MethodBB})
	if err != nil {
		t.Fatal(err)
	}
	if got != 2 {
		t.Fatalf("CountCSP = %d, want 2", got)
	}
}

// Default-config paths: Options without GA/SAIGA overrides must work.
func TestDefaultMethodConfigs(t *testing.T) {
	h := parseExample(t)
	for _, m := range []Method{MethodGA, MethodSAIGA} {
		res, err := GHW(h, Options{Method: m, Seed: 2})
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if res.Width < 2 || res.Width > 3 {
			t.Fatalf("%v default config width = %d", m, res.Width)
		}
		tw, err := Treewidth(h.PrimalGraph(), Options{Method: m, Seed: 2})
		if err != nil {
			t.Fatalf("%v tw: %v", m, err)
		}
		if tw.Width < 2 {
			t.Fatalf("%v tw = %d below exact 2", m, tw.Width)
		}
	}
	// Min-fill treewidth path.
	res, err := Treewidth(h.PrimalGraph(), Options{Method: MethodMinFill})
	if err != nil || res.Width < 2 {
		t.Fatalf("minfill tw: %+v %v", res, err)
	}
}

func TestSolveCSPRejectsInvalid(t *testing.T) {
	bad := &CSP{VarNames: []string{"x"}, Domains: [][]int{{}}}
	if _, _, err := SolveCSP(bad, Options{}); err == nil {
		t.Fatal("invalid CSP accepted")
	}
	if _, err := CountCSP(bad, Options{}); err == nil {
		t.Fatal("invalid CSP accepted by CountCSP")
	}
}

func TestEmptyInputs(t *testing.T) {
	if res, err := Treewidth(NewGraph(0), Options{Method: MethodBB}); err != nil || !res.Exact {
		t.Fatalf("empty graph: %+v %v", res, err)
	}
	b := NewBuilder()
	b.AddEdge("e", "x")
	h := b.Build()
	if _, err := Decompose(h, Options{Method: MethodBB}); err != nil {
		t.Fatalf("single-vertex hypergraph: %v", err)
	}
}
